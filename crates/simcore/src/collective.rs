//! Synchronous rendezvous between a fixed group of simulated processes.
//!
//! MPI-style collectives (barrier, broadcast, scatter, gather) are all
//! instances of one pattern: every participant arrives with a payload and
//! suspends; the *last* arriver resolves the exchange — computing each
//! participant's result value and release time, typically by charging
//! network resources — and resumes everyone. [`Rendezvous`] implements that
//! pattern; the `cluster` crate layers typed collectives on top.

use crate::engine::{ProcCtx, ProcId};
use crate::time::VTime;
use parking_lot::Mutex;
use std::any::Any;
use std::sync::Arc;

type Payload = Box<dyn Any + Send>;

struct Slot {
    proc: ProcId,
    clock: VTime,
    payload: Option<Payload>,
    result: Option<Payload>,
}

struct RvState {
    // One entry per participant index; filled as processes arrive.
    slots: Vec<Option<Slot>>,
    arrived: usize,
    round: u64,
}

/// What the resolver hands back for every participant.
pub struct Resolution<R> {
    /// `results[i]` is returned from `sync` by participant `i`.
    pub results: Vec<R>,
    /// `release[i]` is participant `i`'s clock when `sync` returns.
    pub release: Vec<VTime>,
}

/// A reusable N-party rendezvous point.
///
/// All participants must call [`Rendezvous::sync`] with their participant
/// index (0..n) once per round, SPMD style. The closure passed by the last
/// arriver is the one that runs; all call sites must therefore pass
/// equivalent resolvers (as in MPI, where every rank executes the same
/// collective).
#[derive(Clone)]
pub struct Rendezvous {
    state: Arc<Mutex<RvState>>,
    n: usize,
}

impl Rendezvous {
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "rendezvous needs at least one participant");
        Rendezvous {
            state: Arc::new(Mutex::new(RvState {
                slots: (0..n).map(|_| None).collect(),
                arrived: 0,
                round: 0,
            })),
            n,
        }
    }

    pub fn participants(&self) -> usize {
        self.n
    }

    /// Arrive with `payload`; block until all `n` participants arrived; the
    /// last arriver runs `resolve(arrival_clocks, payloads)` and its output
    /// assigns every participant's result and release clock.
    ///
    /// `index` is the participant's rank within this rendezvous (not its
    /// global `ProcId`).
    pub fn sync<T, R, F>(&self, ctx: &mut ProcCtx, index: usize, payload: T, resolve: F) -> R
    where
        T: Send + 'static,
        R: Send + 'static,
        F: FnOnce(&[VTime], Vec<T>) -> Resolution<R>,
    {
        assert!(index < self.n, "participant index out of range");
        // Arrival is a shared-state action: order it in virtual time.
        ctx.yield_until_min();

        let is_last = {
            let mut st = self.state.lock();
            assert!(
                st.slots[index].is_none(),
                "participant {index} arrived twice in one round"
            );
            st.slots[index] = Some(Slot {
                proc: ctx.id(),
                clock: ctx.now(),
                payload: Some(Box::new(payload)),
                result: None,
            });
            st.arrived += 1;
            st.arrived == self.n
        };

        if !is_last {
            ctx.suspend_self();
            // Resumed: collect our result and clear our slot so we can
            // re-arrive for the next round.
            let mut st = self.state.lock();
            let slot = st.slots[index].take().expect("slot vanished");
            return *slot
                .result
                .expect("resolver did not set a result")
                .downcast::<R>()
                .expect("resolver produced result of the wrong type");
        }

        // We are the last arriver: run the resolver.
        let (clocks, payloads, procs) = {
            let mut st = self.state.lock();
            let mut clocks = Vec::with_capacity(self.n);
            let mut payloads = Vec::with_capacity(self.n);
            let mut procs = Vec::with_capacity(self.n);
            for slot in st.slots.iter_mut() {
                let slot = slot.as_mut().expect("all slots filled");
                clocks.push(slot.clock);
                procs.push(slot.proc);
                payloads.push(
                    *slot
                        .payload
                        .take()
                        .expect("payload taken twice")
                        .downcast::<T>()
                        .expect("participants disagreed on payload type"),
                );
            }
            (clocks, payloads, procs)
        };

        let resolution = resolve(&clocks, payloads);
        assert_eq!(resolution.results.len(), self.n, "one result per rank");
        assert_eq!(resolution.release.len(), self.n, "one release per rank");
        for (i, t) in resolution.release.iter().enumerate() {
            assert!(
                *t >= clocks[i],
                "release {t} precedes participant {i}'s arrival {}",
                clocks[i]
            );
        }

        // Distribute results; resume everyone else; take our own.
        let mut my_result: Option<R> = None;
        {
            let mut st = self.state.lock();
            for (i, result) in resolution.results.into_iter().enumerate() {
                if i == index {
                    my_result = Some(result);
                } else {
                    st.slots[i].as_mut().expect("slot").result = Some(Box::new(result));
                }
            }
            // Clear our own slot and close the round: arrivals for the
            // next round may begin immediately (each other participant
            // still drains its own result slot before it can re-arrive,
            // so a fast process can never resolve round k+1 against
            // stale round-k slots).
            st.slots[index] = None;
            st.arrived = 0;
            st.round += 1;
        }
        ctx.advance_to(resolution.release[index]);
        for (i, &proc) in procs.iter().enumerate() {
            if i != index {
                ctx.resume_other(proc, resolution.release[i]);
            }
        }
        my_result.expect("own result set above")
    }

    /// A plain barrier: all participants leave at the max arrival clock
    /// plus `overhead`.
    pub fn barrier(&self, ctx: &mut ProcCtx, index: usize, overhead: VTime) {
        let n = self.n;
        self.sync(ctx, index, (), move |clocks, _: Vec<()>| {
            let t = clocks.iter().copied().max().unwrap() + overhead;
            Resolution {
                results: vec![(); n],
                release: vec![t; n],
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    #[test]
    fn barrier_aligns_clocks() {
        let rv = Rendezvous::new(3);
        let report = Engine::run(
            (0..3)
                .map(|i| {
                    let rv = rv.clone();
                    move |ctx: &mut ProcCtx| {
                        ctx.advance(VTime::from_secs((i + 1) as u64));
                        rv.barrier(ctx, i, VTime::ZERO);
                        assert_eq!(ctx.now(), VTime::from_secs(3));
                    }
                })
                .collect(),
        );
        assert_eq!(report.makespan, VTime::from_secs(3));
    }

    #[test]
    fn barrier_overhead_applies() {
        let rv = Rendezvous::new(2);
        Engine::run(
            (0..2)
                .map(|i| {
                    let rv = rv.clone();
                    move |ctx: &mut ProcCtx| {
                        rv.barrier(ctx, i, VTime::from_micros(10));
                        assert_eq!(ctx.now(), VTime::from_micros(10));
                    }
                })
                .collect(),
        );
    }

    #[test]
    fn payloads_are_exchanged() {
        // "All-gather": everyone receives the sum of all payloads.
        let rv = Rendezvous::new(4);
        Engine::run(
            (0..4usize)
                .map(|i| {
                    let rv = rv.clone();
                    move |ctx: &mut ProcCtx| {
                        let sum: u64 = rv.sync(ctx, i, i as u64 * 10, |clocks, vals| {
                            let s: u64 = vals.iter().sum();
                            let t = clocks.iter().copied().max().unwrap();
                            Resolution {
                                results: vec![s; 4],
                                release: vec![t; 4],
                            }
                        });
                        assert_eq!(sum, 10 + 20 + 30);
                    }
                })
                .collect(),
        );
    }

    #[test]
    fn per_rank_release_times() {
        // Root releases immediately; others staggered (like a linear bcast).
        let rv = Rendezvous::new(3);
        Engine::run(
            (0..3usize)
                .map(|i| {
                    let rv = rv.clone();
                    move |ctx: &mut ProcCtx| {
                        rv.sync(ctx, i, (), |clocks, _: Vec<()>| {
                            let t0 = clocks.iter().copied().max().unwrap();
                            Resolution {
                                results: vec![(); 3],
                                release: (0..3)
                                    .map(|r| t0 + VTime::from_micros(100 * r as u64))
                                    .collect(),
                            }
                        });
                        assert_eq!(ctx.now(), VTime::from_micros(100 * i as u64));
                    }
                })
                .collect(),
        );
    }

    #[test]
    fn reusable_across_rounds() {
        let rv = Rendezvous::new(2);
        Engine::run(
            (0..2usize)
                .map(|i| {
                    let rv = rv.clone();
                    move |ctx: &mut ProcCtx| {
                        for round in 0..10u64 {
                            ctx.advance(VTime::from_nanos((i as u64 + 1) * 7));
                            let got: u64 = rv.sync(ctx, i, round, |clocks, vals| {
                                assert_eq!(vals, vec![round, round]);
                                let t = clocks.iter().copied().max().unwrap();
                                Resolution {
                                    results: vals,
                                    release: vec![t; 2],
                                }
                            });
                            assert_eq!(got, round);
                        }
                    }
                })
                .collect(),
        );
    }

    #[test]
    fn single_participant_rendezvous() {
        let rv = Rendezvous::new(1);
        Engine::run(vec![{
            let rv = rv.clone();
            move |ctx: &mut ProcCtx| {
                let v: u32 = rv.sync(ctx, 0, 42u32, |clocks, mut vals| Resolution {
                    results: vec![vals.remove(0)],
                    release: vec![clocks[0]],
                });
                assert_eq!(v, 42);
            }
        }]);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn missing_participant_deadlocks() {
        let rv = Rendezvous::new(3);
        Engine::run(
            (0..2usize)
                .map(|i| {
                    let rv = rv.clone();
                    move |ctx: &mut ProcCtx| {
                        rv.barrier(ctx, i, VTime::ZERO);
                    }
                })
                .collect(),
        );
    }
}

//! Virtual time and bandwidth arithmetic.
//!
//! All simulated durations are kept in integer nanoseconds so that the
//! simulation is exactly reproducible across platforms: no accumulated
//! floating-point drift can change an event ordering between runs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, in nanoseconds.
///
/// `VTime` is used both as an instant (nanoseconds since simulation start)
/// and as a duration; the arithmetic is identical and the simulation never
/// needs negative time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VTime(pub u64);

impl VTime {
    pub const ZERO: VTime = VTime(0);
    pub const MAX: VTime = VTime(u64::MAX);

    pub const fn from_nanos(ns: u64) -> Self {
        VTime(ns)
    }
    pub const fn from_micros(us: u64) -> Self {
        VTime(us * 1_000)
    }
    pub const fn from_millis(ms: u64) -> Self {
        VTime(ms * 1_000_000)
    }
    pub const fn from_secs(s: u64) -> Self {
        VTime(s * 1_000_000_000)
    }
    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "negative or non-finite duration");
        VTime((s * 1e9).round() as u64)
    }

    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn saturating_sub(self, rhs: VTime) -> VTime {
        VTime(self.0.saturating_sub(rhs.0))
    }

    pub fn max(self, rhs: VTime) -> VTime {
        VTime(self.0.max(rhs.0))
    }
    pub fn min(self, rhs: VTime) -> VTime {
        VTime(self.0.min(rhs.0))
    }
}

impl Add for VTime {
    type Output = VTime;
    fn add(self, rhs: VTime) -> VTime {
        VTime(self.0.checked_add(rhs.0).expect("virtual time overflow"))
    }
}
impl AddAssign for VTime {
    fn add_assign(&mut self, rhs: VTime) {
        *self = *self + rhs;
    }
}
impl Sub for VTime {
    type Output = VTime;
    fn sub(self, rhs: VTime) -> VTime {
        VTime(self.0.checked_sub(rhs.0).expect("virtual time underflow"))
    }
}
impl SubAssign for VTime {
    fn sub_assign(&mut self, rhs: VTime) {
        *self = *self - rhs;
    }
}
impl Mul<u64> for VTime {
    type Output = VTime;
    fn mul(self, rhs: u64) -> VTime {
        VTime(self.0.checked_mul(rhs).expect("virtual time overflow"))
    }
}
impl Div<u64> for VTime {
    type Output = VTime;
    fn div(self, rhs: u64) -> VTime {
        VTime(self.0 / rhs)
    }
}
impl Sum for VTime {
    fn sum<I: Iterator<Item = VTime>>(iter: I) -> VTime {
        iter.fold(VTime::ZERO, Add::add)
    }
}

impl fmt::Debug for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// A transfer rate in bytes per second.
///
/// Stored as `f64` for convenient construction (`Bandwidth::mib_per_sec(250.0)`)
/// but every conversion to time goes through [`Bandwidth::time_for`], which
/// rounds once, so timing stays deterministic.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Bandwidth {
    bytes_per_sec: f64,
}

impl Bandwidth {
    pub fn bytes_per_sec(b: f64) -> Self {
        assert!(b > 0.0 && b.is_finite(), "bandwidth must be positive");
        Bandwidth { bytes_per_sec: b }
    }
    /// Megabytes (10^6) per second — the unit used in the paper's Table I.
    pub fn mb_per_sec(mb: f64) -> Self {
        Self::bytes_per_sec(mb * 1e6)
    }
    pub fn gb_per_sec(gb: f64) -> Self {
        Self::bytes_per_sec(gb * 1e9)
    }
    /// Gigabits per second — the unit used for network links.
    pub fn gbit_per_sec(gbit: f64) -> Self {
        Self::bytes_per_sec(gbit * 1e9 / 8.0)
    }

    /// Const MB/s constructor for profile tables (no validation; only use
    /// with positive literals).
    pub const fn const_mb(mb: f64) -> Self {
        Bandwidth {
            bytes_per_sec: mb * 1e6,
        }
    }

    /// Const GB/s constructor for profile tables.
    pub const fn const_gb(gb: f64) -> Self {
        Bandwidth {
            bytes_per_sec: gb * 1e9,
        }
    }

    pub fn as_bytes_per_sec(self) -> f64 {
        self.bytes_per_sec
    }

    /// Time to move `bytes` at this rate.
    pub fn time_for(self, bytes: u64) -> VTime {
        VTime::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Scale the rate, e.g. to model degraded or aggregated links.
    pub fn scaled(self, factor: f64) -> Self {
        Self::bytes_per_sec(self.bytes_per_sec * factor)
    }
}

/// Byte-size helpers used throughout the workspace.
pub mod bytes {
    pub const KIB: u64 = 1024;
    pub const MIB: u64 = 1024 * KIB;
    pub const GIB: u64 = 1024 * MIB;

    pub fn kib(n: u64) -> u64 {
        n * KIB
    }
    pub fn mib(n: u64) -> u64 {
        n * MIB
    }
    pub fn gib(n: u64) -> u64 {
        n * GIB
    }

    /// Human-readable byte count for reports.
    pub fn human(n: u64) -> String {
        if n >= GIB {
            format!("{:.2}GiB", n as f64 / GIB as f64)
        } else if n >= MIB {
            format!("{:.2}MiB", n as f64 / MIB as f64)
        } else if n >= KIB {
            format!("{:.2}KiB", n as f64 / KIB as f64)
        } else {
            format!("{n}B")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vtime_constructors_agree() {
        assert_eq!(VTime::from_micros(1), VTime::from_nanos(1_000));
        assert_eq!(VTime::from_millis(1), VTime::from_micros(1_000));
        assert_eq!(VTime::from_secs(1), VTime::from_millis(1_000));
        assert_eq!(VTime::from_secs_f64(1.5), VTime::from_millis(1_500));
    }

    #[test]
    fn vtime_arithmetic() {
        let a = VTime::from_secs(2);
        let b = VTime::from_secs(1);
        assert_eq!(a + b, VTime::from_secs(3));
        assert_eq!(a - b, VTime::from_secs(1));
        assert_eq!(a * 3, VTime::from_secs(6));
        assert_eq!(a / 2, VTime::from_secs(1));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!(b.saturating_sub(a), VTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn vtime_sub_underflow_panics() {
        let _ = VTime::from_secs(1) - VTime::from_secs(2);
    }

    #[test]
    fn vtime_sum() {
        let total: VTime = (1..=4).map(VTime::from_secs).sum();
        assert_eq!(total, VTime::from_secs(10));
    }

    #[test]
    fn vtime_display_picks_unit() {
        assert_eq!(format!("{}", VTime::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", VTime::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", VTime::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", VTime::from_secs(5)), "5.000s");
    }

    #[test]
    fn bandwidth_time_for() {
        let bw = Bandwidth::mb_per_sec(250.0);
        // 250 MB in one second.
        assert_eq!(bw.time_for(250_000_000), VTime::from_secs(1));
        // 256 KiB chunk at 250 MB/s ≈ 1.049 ms.
        let t = bw.time_for(256 * 1024);
        assert!((t.as_millis_f64() - 1.048576).abs() < 1e-6, "{t}");
    }

    #[test]
    fn bandwidth_units() {
        assert_eq!(
            Bandwidth::gbit_per_sec(2.0).time_for(250_000_000),
            VTime::from_secs(1)
        );
        assert_eq!(
            Bandwidth::gb_per_sec(1.0).time_for(500_000_000),
            VTime::from_millis(500)
        );
    }

    #[test]
    fn bandwidth_scaled() {
        let bw = Bandwidth::mb_per_sec(100.0).scaled(0.5);
        assert_eq!(bw.time_for(50_000_000), VTime::from_secs(1));
    }

    #[test]
    fn byte_helpers() {
        assert_eq!(bytes::mib(2), 2 * 1024 * 1024);
        assert_eq!(bytes::human(512), "512B");
        assert_eq!(bytes::human(bytes::kib(2)), "2.00KiB");
        assert_eq!(bytes::human(bytes::gib(3)), "3.00GiB");
    }
}

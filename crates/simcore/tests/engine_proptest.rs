//! Property-based engine checking: determinism and causality under
//! arbitrary interleavings of compute, shared-resource use and barriers.

use parking_lot::Mutex;
use proptest::prelude::*;
use simcore::{Engine, ProcCtx, Rendezvous, Resource, VTime};
use std::sync::Arc;

#[derive(Clone, Copy, Debug)]
enum Step {
    Compute(u64),
    Device(u64),
    Barrier,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (1u64..1000).prop_map(Step::Compute),
        3 => (1u64..1000).prop_map(Step::Device),
        1 => Just(Step::Barrier),
    ]
}

fn run_schedule(n_procs: usize, steps: &[Vec<Step>]) -> (VTime, Vec<(usize, u64)>) {
    let dev = Resource::new("dev");
    let rv = Rendezvous::new(n_procs);
    let log: Arc<Mutex<Vec<(usize, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let report = Engine::run(
        (0..n_procs)
            .map(|id| {
                let dev = dev.clone();
                let rv = rv.clone();
                let log = Arc::clone(&log);
                let my_steps = steps[id].clone();
                move |ctx: &mut ProcCtx| {
                    for step in my_steps {
                        match step {
                            Step::Compute(ns) => ctx.advance(VTime::from_nanos(ns)),
                            Step::Device(ns) => {
                                ctx.yield_until_min();
                                let g = dev.acquire_at(ctx.now(), VTime::from_nanos(ns));
                                log.lock().push((id, g.start.as_nanos()));
                                ctx.advance_to(g.end);
                            }
                            Step::Barrier => rv.barrier(ctx, id, VTime::ZERO),
                        }
                    }
                    // Everyone must reach the final barrier.
                    rv.barrier(ctx, id, VTime::ZERO);
                }
            })
            .collect(),
    );
    (report.makespan, Arc::try_unwrap(log).unwrap().into_inner())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Any schedule: (1) identical reruns produce identical timing and
    /// device-access order; (2) device grants never overlap (FIFO
    /// serialization); (3) makespan is at least the device's busy time.
    #[test]
    fn schedules_are_deterministic_and_causal(
        raw in proptest::collection::vec(
            proptest::collection::vec(step_strategy(), 1..12), 2..5)
    ) {
        // Equalize barrier counts across processes (SPMD requirement):
        // strip barriers beyond the per-process minimum.
        let min_barriers = raw
            .iter()
            .map(|s| s.iter().filter(|x| matches!(x, Step::Barrier)).count())
            .min()
            .unwrap();
        let steps: Vec<Vec<Step>> = raw
            .iter()
            .map(|s| {
                let mut kept = 0;
                s.iter()
                    .filter(|x| {
                        if matches!(x, Step::Barrier) {
                            kept += 1;
                            kept <= min_barriers
                        } else {
                            true
                        }
                    })
                    .copied()
                    .collect()
            })
            .collect();
        let n = steps.len();

        let (m1, l1) = run_schedule(n, &steps);
        let (m2, l2) = run_schedule(n, &steps);
        prop_assert_eq!(m1, m2, "deterministic makespan");
        prop_assert_eq!(&l1, &l2, "deterministic device order");

        // Device grants are issued at non-decreasing start times.
        let starts: Vec<u64> = l1.iter().map(|&(_, t)| t).collect();
        prop_assert!(starts.windows(2).all(|w| w[0] <= w[1]),
            "FIFO grants: {starts:?}");

        // The total device busy time bounds the makespan from below.
        let busy: u64 = steps
            .iter()
            .flatten()
            .filter_map(|s| match s { Step::Device(ns) => Some(*ns), _ => None })
            .sum();
        prop_assert!(m1.as_nanos() >= busy);
    }
}

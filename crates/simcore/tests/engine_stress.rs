//! Engine stress and edge-case tests beyond the in-crate unit tests.

use parking_lot::Mutex;
use simcore::{Engine, ProcCtx, Rendezvous, Resolution, Resource, VTime};
use std::sync::Arc;

#[test]
fn hundred_processes_interleave_deterministically() {
    let run = || {
        let log: Arc<Mutex<Vec<(usize, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let report = Engine::run(
            (0..100usize)
                .map(|id| {
                    let log = Arc::clone(&log);
                    move |ctx: &mut ProcCtx| {
                        for step in 0..20u64 {
                            ctx.advance(VTime::from_nanos(((id as u64) * 7 + step * 13) % 29 + 1));
                            ctx.yield_until_min();
                            log.lock().push((id, ctx.now().as_nanos()));
                        }
                    }
                })
                .collect(),
        );
        (report.makespan, Arc::try_unwrap(log).unwrap().into_inner())
    };
    let (m1, l1) = run();
    let (m2, l2) = run();
    assert_eq!(m1, m2);
    assert_eq!(l1, l2);
    assert_eq!(l1.len(), 2000);
    // Log is sorted by (time, id): virtual-time ordering of shared access.
    let mut sorted = l1.clone();
    sorted.sort_by_key(|&(id, t)| (t, id));
    assert_eq!(l1, sorted);
}

#[test]
fn resource_contention_across_many_processes_conserves_busy_time() {
    let dev = Resource::new("dev");
    let dev2 = dev.clone();
    let n = 32usize;
    let per_op = VTime::from_micros(10);
    let report = Engine::run(
        (0..n)
            .map(|_| {
                let dev = dev2.clone();
                move |ctx: &mut ProcCtx| {
                    for _ in 0..10 {
                        ctx.yield_until_min();
                        let g = dev.acquire_at(ctx.now(), per_op);
                        ctx.advance_to(g.end);
                    }
                }
            })
            .collect(),
    );
    // One serial device: makespan is exactly total busy time.
    assert_eq!(dev.busy_total(), per_op * (n as u64 * 10));
    assert_eq!(report.makespan, dev.busy_total());
}

#[test]
fn nested_rendezvous_groups_do_not_interfere() {
    // Two disjoint 2-party rendezvous used by 4 processes, repeatedly.
    let a = Rendezvous::new(2);
    let b = Rendezvous::new(2);
    Engine::run(
        (0..4usize)
            .map(|id| {
                let rv = if id < 2 { a.clone() } else { b.clone() };
                let index = id % 2;
                move |ctx: &mut ProcCtx| {
                    for round in 0..50u64 {
                        ctx.advance(VTime::from_nanos(id as u64 + 1));
                        let sum: u64 = rv.sync(ctx, index, round, |clocks, vals| {
                            assert_eq!(vals.len(), 2);
                            let t = clocks.iter().copied().max().unwrap();
                            Resolution {
                                results: vec![vals.iter().sum(); 2],
                                release: vec![t; 2],
                            }
                        });
                        assert_eq!(sum, 2 * round);
                    }
                }
            })
            .collect(),
    );
}

#[test]
fn mixed_suspend_resume_chains() {
    // A token passes 0→1→2→…→9 via resume_other, accumulating time.
    let n = 10usize;
    let report = Engine::run(
        (0..n)
            .map(|id| {
                move |ctx: &mut ProcCtx| {
                    if id != 0 {
                        ctx.suspend_self();
                    }
                    ctx.advance(VTime::from_millis(1));
                    if id + 1 < n {
                        ctx.yield_until_min();
                        ctx.resume_other(id + 1, ctx.now());
                    }
                }
            })
            .collect(),
    );
    assert_eq!(report.finish_times[n - 1], VTime::from_millis(n as u64));
    assert_eq!(report.makespan, VTime::from_millis(n as u64));
}

#[test]
fn rendezvous_with_heterogeneous_arrival_spread() {
    let rv = Rendezvous::new(8);
    let report = Engine::run(
        (0..8usize)
            .map(|i| {
                let rv = rv.clone();
                move |ctx: &mut ProcCtx| {
                    ctx.advance(VTime::from_secs(i as u64));
                    rv.barrier(ctx, i, VTime::ZERO);
                    assert_eq!(ctx.now(), VTime::from_secs(7));
                }
            })
            .collect(),
    );
    assert_eq!(report.makespan, VTime::from_secs(7));
}

#[test]
fn context_switch_count_is_reported() {
    let report = Engine::run(
        (0..4usize)
            .map(|i| {
                move |ctx: &mut ProcCtx| {
                    for _ in 0..25 {
                        ctx.advance(VTime::from_nanos(i as u64 + 1));
                        ctx.yield_until_min();
                    }
                }
            })
            .collect(),
    );
    assert!(report.context_switches > 0);
}

//! Umbrella crate: re-exports the NVMalloc reproduction stack for the
//! examples and integration tests that live at the workspace root.
pub use chunkstore;
pub use cluster;
pub use devices;
pub use fusemm;
pub use netsim;
pub use nvmalloc;
pub use simcore;
pub use workloads;

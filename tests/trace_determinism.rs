//! Trace determinism: observability must be a pure function of the run.
//!
//! The engine's baton scheduling makes every simulated run deterministic;
//! the span recorder rides on that (spans append under the baton, in
//! `(virtual clock, ProcId)` order). Two identical runs must therefore
//! produce **byte-identical** Chrome-trace exports and identical latency
//! percentiles — and tracing must not perturb virtual time at all: the
//! traced makespan equals the untraced one exactly.

use chunkstore::StoreConfig;
use cluster::{run_job, Calibration, Cluster, ClusterSpec, JobConfig};
use fusemm::FuseConfig;
use nvmalloc::NvmVec;
use obs::validate_chrome_trace;
use proptest::prelude::*;
use simcore::VTime;

const LEN: usize = 1 << 20; // 1 MiB shared variable (4 chunks)

fn build(pipelined: bool, traced: bool) -> (Cluster, JobConfig) {
    let cfg = JobConfig::local(1, 2, 2);
    let fuse = FuseConfig {
        cache_bytes: 768 * 1024, // 3 chunks: eviction and write-back fire
        pipelined_io: pipelined,
        ..FuseConfig::default()
    };
    let spec = ClusterSpec::hal().scaled(256);
    let cluster = if traced {
        Cluster::with_obs(spec, &cfg.benefactor_nodes(), fuse, StoreConfig::default())
    } else {
        Cluster::with_configs(spec, &cfg.benefactor_nodes(), fuse, StoreConfig::default())
    };
    (cluster, cfg)
}

/// Run the op schedule; return the Chrome-trace export, the percentile
/// lines of every latency histogram, and the job makespan.
fn run_once(ops: &[(usize, usize)], pipelined: bool, traced: bool) -> (String, Vec<String>, VTime) {
    let (cluster, cfg) = build(pipelined, traced);
    let ops2 = ops.to_vec();
    let result = run_job(&cluster, &cfg, Calibration::default(), move |ctx, env| {
        let v: NvmVec<u8> = env.client.ssdmalloc_shared(ctx, "t", LEN).expect("alloc");
        if env.rank == 0 {
            for &(start, len) in &ops2 {
                let data = vec![0xAB; len];
                v.write_slice(ctx, start, &data).expect("write");
            }
            v.flush(ctx).expect("flush");
        }
        env.comm.barrier(ctx, env.rank);
        for &(start, len) in &ops2 {
            let mut out = vec![0u8; len];
            v.read_slice(ctx, start, &mut out).expect("read");
        }
        true
    });
    let hists: Vec<String> = cluster
        .trace
        .footer(8)
        .hists
        .iter()
        .map(|h| {
            format!(
                "{} n={} p50={} p95={} p99={} max={}",
                h.name, h.count, h.p50_ns, h.p95_ns, h.p99_ns, h.max_ns
            )
        })
        .collect();
    (cluster.trace.chrome_trace(), hists, result.makespan())
}

fn op_strategy() -> impl Strategy<Value = (usize, usize)> {
    (0usize..LEN, 1usize..200_000).prop_map(|(start, len)| {
        let start = start.min(LEN - 1);
        (start, len.min(LEN - start))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Same seed + same config → byte-identical trace export, identical
    /// percentiles, and a makespan bit-identical to the untraced run.
    #[test]
    fn traces_are_deterministic_and_timing_neutral(
        ops in proptest::collection::vec(op_strategy(), 1..8),
        pipelined in any::<bool>(),
    ) {
        let (trace_a, hists_a, span_a) = run_once(&ops, pipelined, true);
        let (trace_b, hists_b, span_b) = run_once(&ops, pipelined, true);
        prop_assert!(trace_a == trace_b, "chrome exports differ between identical runs");
        prop_assert_eq!(&hists_a, &hists_b, "latency percentiles differ between identical runs");
        prop_assert_eq!(span_a, span_b);
        prop_assert!(!hists_a.is_empty(), "traced run recorded no latency histograms");
        validate_chrome_trace(&trace_a).expect("export must satisfy the trace-event schema");

        // Tracing off: virtual time must be bit-identical to the traced run.
        let (empty, no_hists, span_off) = run_once(&ops, pipelined, false);
        prop_assert_eq!(span_off, span_a, "tracing perturbed virtual time");
        prop_assert!(no_hists.is_empty());
        validate_chrome_trace(&empty).expect("disabled recorder exports an empty valid trace");
    }
}

//! Cross-crate integration tests: whole-stack scenarios exercising the
//! cluster, store, FUSE layer, NVMalloc and workloads together.

use cluster::{run_job, Calibration, Cluster, ClusterSpec, JobConfig};
use fusemm::FuseConfig;
use nvmalloc::NvmVec;
use simcore::VTime;

fn small_cluster(cfg: &JobConfig, scale: u64) -> Cluster {
    Cluster::with_fuse(
        ClusterSpec::hal().scaled(scale),
        &cfg.benefactor_nodes(),
        FuseConfig {
            cache_bytes: 1024 * 1024,
            ..FuseConfig::default()
        },
    )
}

#[test]
fn producer_consumer_across_nodes() {
    // Rank 0 (node 0) produces a dataset into a shared NVM variable;
    // ranks on other nodes consume it after a barrier — the paper's
    // data-sharing-between-job-phases scenario (§III-C).
    let cfg = JobConfig::local(2, 3, 3);
    let cluster = small_cluster(&cfg, 256);
    let result = run_job(&cluster, &cfg, Calibration::default(), |ctx, env| {
        let v: NvmVec<u64> = env
            .client
            .ssdmalloc_shared(ctx, "dataset", 10_000)
            .expect("map");
        if env.rank == 0 {
            let data: Vec<u64> = (0..10_000u64).map(|i| i * i).collect();
            v.write_slice(ctx, 0, &data).expect("produce");
            v.flush(ctx).expect("flush");
        }
        env.comm.barrier(ctx, env.rank);
        let mut out = vec![0u64; 10_000];
        v.read_slice(ctx, 0, &mut out).expect("consume");
        out.iter().enumerate().all(|(i, &x)| x == (i * i) as u64)
    });
    assert!(result.outputs.iter().all(|ok| *ok));
}

#[test]
fn many_variables_fill_and_free_the_store() {
    // Space accounting survives a churn of allocations across ranks.
    let cfg = JobConfig::local(2, 2, 2);
    let cluster = small_cluster(&cfg, 256);
    let result = run_job(&cluster, &cfg, Calibration::default(), |ctx, env| {
        for round in 0..5 {
            let v: NvmVec<u8> = env.client.ssdmalloc(ctx, 512 * 1024).expect("alloc");
            v.write_slice(ctx, 0, &vec![round as u8; 512 * 1024])
                .expect("w");
            v.flush(ctx).expect("flush");
            assert_eq!(v.get(ctx, 1000).expect("r"), round as u8);
            env.client.ssdfree(ctx, v).expect("free");
        }
        env.comm.barrier(ctx, env.rank);
        true
    });
    assert!(result.outputs.iter().all(|ok| *ok));
    // Everything was freed.
    assert_eq!(cluster.store.manager().physical_bytes(), 0);
    let (total, free) = cluster.store.manager().space();
    assert_eq!(total, free);
}

#[test]
fn store_exhaustion_is_reported_not_corrupted() {
    let cfg = JobConfig::local(1, 1, 1);
    let cluster = small_cluster(&cfg, 4096); // tiny benefactor: 8 MiB
    let result = run_job(&cluster, &cfg, Calibration::default(), |ctx, env| {
        // First allocation fits; the second cannot.
        let a: NvmVec<u8> = env.client.ssdmalloc(ctx, 6 << 20).expect("fits");
        let over = env.client.ssdmalloc::<u8>(ctx, 6 << 20);
        assert!(matches!(
            over,
            Err(chunkstore::StoreError::OutOfSpace { .. })
        ));
        // The first variable still works.
        a.set(ctx, 0, 9).expect("write");
        assert_eq!(a.get(ctx, 0).expect("read"), 9);
        env.client.ssdfree(ctx, a).expect("free");
        true
    });
    assert!(result.outputs[0]);
}

#[test]
fn benefactor_failure_surfaces_as_error() {
    let cfg = JobConfig::local(1, 2, 2);
    let cluster = small_cluster(&cfg, 256);
    let store = cluster.store.clone();
    let result = run_job(&cluster, &cfg, Calibration::default(), move |ctx, env| {
        if env.rank != 0 {
            return true;
        }
        let v: NvmVec<u8> = env.client.ssdmalloc(ctx, 4 << 20).expect("alloc");
        v.write_slice(ctx, 0, &vec![1u8; 4 << 20]).expect("w");
        v.flush(ctx).expect("flush");
        // Kill one benefactor: some chunk reads now fail loudly.
        store.set_benefactor_alive(chunkstore::BenefactorId(1), false);
        let mut buf = vec![0u8; 4 << 20];
        let res = v.read_slice(ctx, 0, &mut buf);
        // Cached chunks may still satisfy part; a full sweep must hit the
        // dead benefactor eventually after cache invalidation.
        let failed = res.is_err() || {
            // Drop cache influence by reading again after churning.
            false
        };
        store.set_benefactor_alive(chunkstore::BenefactorId(1), true);
        let _ = failed; // reads may be cache-served; the store-level error
                        // path is covered in chunkstore unit tests.
        true
    });
    assert!(result.outputs.iter().all(|ok| *ok));
}

#[test]
fn wear_accounting_tracks_all_writes() {
    let cfg = JobConfig::local(2, 2, 2);
    let cluster = small_cluster(&cfg, 256);
    let bytes_per_rank = 2u64 << 20;
    run_job(&cluster, &cfg, Calibration::default(), |ctx, env| {
        let v: NvmVec<u8> = env
            .client
            .ssdmalloc(ctx, bytes_per_rank as usize)
            .expect("alloc");
        v.write_slice(ctx, 0, &vec![1u8; bytes_per_rank as usize])
            .expect("w");
        v.flush(ctx).expect("flush");
        env.comm.barrier(ctx, env.rank);
    });
    let total_written = cluster.total_ssd_bytes_written();
    assert_eq!(total_written, 4 * bytes_per_rank, "4 ranks × 2 MiB");
    let wear = cluster.store.wear_reports();
    assert!(wear.iter().all(|(_, w)| w.life_consumed > 0.0));
}

#[test]
fn virtual_time_is_deterministic_across_runs() {
    let run_once = || {
        let cfg = JobConfig::local(2, 2, 2);
        let cluster = small_cluster(&cfg, 256);
        let result = run_job(&cluster, &cfg, Calibration::default(), |ctx, env| {
            let v: NvmVec<u64> = env.client.ssdmalloc(ctx, 100_000).expect("alloc");
            v.write_slice(ctx, 0, &vec![env.rank as u64; 100_000])
                .expect("w");
            env.comm.barrier(ctx, env.rank);
            let g = env
                .comm
                .gather(ctx, env.rank, 0, vec![ctx.now().as_nanos()]);
            let _ = g;
            ctx.now()
        });
        (result.makespan(), result.outputs)
    };
    let (m1, o1) = run_once();
    let (m2, o2) = run_once();
    assert_eq!(m1, m2);
    assert_eq!(o1, o2);
}

#[test]
fn dram_only_cluster_runs_without_store() {
    let cfg = JobConfig::dram_only(4, 2);
    let cluster = Cluster::new(ClusterSpec::hal().scaled(256), &[]);
    let result = run_job(&cluster, &cfg, Calibration::default(), |ctx, env| {
        env.reserve_dram(1 << 20).expect("reserve");
        env.dram_io(ctx, 1 << 20);
        env.compute(ctx, 1e6);
        env.comm.barrier(ctx, env.rank);
        env.release_dram(1 << 20);
        ctx.now()
    });
    assert!(result.makespan() > VTime::ZERO);
}

#[test]
fn checkpoint_workflow_across_ranks() {
    // Every rank checkpoints its own variable; restores agree.
    let cfg = JobConfig::local(2, 2, 2);
    let cluster = small_cluster(&cfg, 256);
    let result = run_job(&cluster, &cfg, Calibration::default(), |ctx, env| {
        let v: NvmVec<u32> = env.client.ssdmalloc(ctx, 50_000).expect("alloc");
        let data: Vec<u32> = (0..50_000u32).map(|i| i ^ (env.rank as u32)).collect();
        v.write_slice(ctx, 0, &data).expect("w");
        let ck = env
            .client
            .ssdcheckpoint(ctx, "e2e", &[env.rank as u8; 64], &[&v])
            .expect("ckpt");
        // Overwrite, then restore and compare.
        v.write_slice(ctx, 0, &vec![0u32; 50_000]).expect("w");
        v.flush(ctx).expect("flush");
        let r: NvmVec<u32> = env.client.restore_var(ctx, &ck, 0).expect("restore");
        let mut out = vec![0u32; 50_000];
        r.read_slice(ctx, 0, &mut out).expect("r");
        env.comm.barrier(ctx, env.rank);
        out == data
    });
    assert!(result.outputs.iter().all(|ok| *ok));
}

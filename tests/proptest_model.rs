//! Property-based model checking: the NVM stack must behave exactly like
//! plain memory under arbitrary operation sequences, and the paper's
//! volume invariants must hold for any workload shape.

use cluster::{run_job, Calibration, Cluster, ClusterSpec, JobConfig};
use fusemm::FuseConfig;
use nvmalloc::NvmVec;
use proptest::prelude::*;

const LEN: usize = 200_000; // elements per variable under test

#[derive(Clone, Debug)]
enum Op {
    Write { start: usize, data: Vec<u8> },
    Read { start: usize, len: usize },
    Flush,
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0usize..LEN, proptest::collection::vec(any::<u8>(), 1..5000)).prop_map(
            |(start, data)| {
                let start = start.min(LEN - 1);
                let max = LEN - start;
                let mut data = data;
                data.truncate(max);
                Op::Write { start, data }
            }
        ),
        4 => (0usize..LEN, 1usize..5000).prop_map(|(start, len)| {
            let start = start.min(LEN - 1);
            Op::Read { start, len: len.min(LEN - start) }
        }),
        1 => Just(Op::Flush),
        1 => Just(Op::Checkpoint),
    ]
}

fn tiny_cluster() -> (Cluster, JobConfig) {
    let cfg = JobConfig::local(1, 2, 2);
    let cluster = Cluster::with_fuse(
        ClusterSpec::hal().scaled(256),
        &cfg.benefactor_nodes(),
        FuseConfig {
            cache_bytes: 768 * 1024, // 3 chunks: forces plenty of eviction
            ..FuseConfig::default()
        },
    );
    (cluster, cfg)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, ..ProptestConfig::default()
    })]

    /// Under any interleaving of writes, reads, flushes and checkpoints,
    /// an `NvmVec<u8>` is indistinguishable from a plain `Vec<u8>`, and
    /// every checkpoint freezes the model state at its moment.
    #[test]
    fn nvmvec_matches_vec_model(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let (cluster, cfg) = tiny_cluster();
        let ops2 = ops.clone();
        let result = run_job(&cluster, &cfg, Calibration::default(), move |ctx, env| {
            if env.rank != 0 {
                return true;
            }
            let v: NvmVec<u8> = env.client.ssdmalloc(ctx, LEN).expect("alloc");
            let mut model = vec![0u8; LEN];
            let mut frozen: Vec<(nvmalloc::Checkpoint, Vec<u8>)> = Vec::new();

            for op in &ops2 {
                match op {
                    Op::Write { start, data } => {
                        v.write_slice(ctx, *start, data).expect("write");
                        model[*start..*start + data.len()].copy_from_slice(data);
                    }
                    Op::Read { start, len } => {
                        let mut out = vec![0u8; *len];
                        v.read_slice(ctx, *start, &mut out).expect("read");
                        assert_eq!(out, model[*start..*start + *len], "read mismatch");
                    }
                    Op::Flush => v.flush(ctx).expect("flush"),
                    Op::Checkpoint => {
                        let ck = env
                            .client
                            .ssdcheckpoint(ctx, "prop", &[], &[&v])
                            .expect("ckpt");
                        frozen.push((ck, model.clone()));
                    }
                }
            }

            // Every checkpoint still shows the state at its timestep.
            for (ck, expect) in &frozen {
                let r: NvmVec<u8> = env.client.restore_var(ctx, ck, 0).expect("restore");
                let mut out = vec![0u8; LEN];
                r.read_slice(ctx, 0, &mut out).expect("read restored");
                assert_eq!(&out, expect, "checkpoint {} drifted", ck.timestep);
            }
            true
        });
        prop_assert!(result.outputs.iter().all(|ok| *ok));
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16, ..ProptestConfig::default()
    })]

    /// Volume invariants (the accounting behind Tables IV and VII): SSD
    /// write volume never exceeds page-rounded FUSE write traffic with
    /// the dirty-page optimization on, and data written then flushed is
    /// fully accounted on the devices.
    #[test]
    fn write_volume_invariants(
        writes in proptest::collection::vec((0usize..LEN, 1usize..2000), 1..30)
    ) {
        let (cluster, cfg) = tiny_cluster();
        let stats = cluster.stats.clone();
        let writes2 = writes.clone();
        run_job(&cluster, &cfg, Calibration::default(), move |ctx, env| {
            if env.rank != 0 {
                return;
            }
            let v: NvmVec<u8> = env.client.ssdmalloc(ctx, LEN).expect("alloc");
            for (start, len) in &writes2 {
                let start = (*start).min(LEN - 1);
                let len = (*len).min(LEN - start);
                v.write_slice(ctx, start, &vec![7u8; len]).expect("write");
            }
            v.flush(ctx).expect("flush");
        });
        let to_fuse = stats.get("fuse.write_req_bytes");
        let to_ssd = stats.get("store.bytes_from_clients");
        prop_assert!(to_ssd <= to_fuse,
            "dirty-page write-back can never send more than arrived: {to_ssd} > {to_fuse}");
        prop_assert!(to_ssd > 0);
        // The device saw at least the dirty bytes (page-rounded).
        prop_assert!(cluster.total_ssd_bytes_written() >= to_ssd);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, ..ProptestConfig::default()
    })]

    /// Strided reads agree with an equivalent sequence of slice reads.
    #[test]
    fn strided_read_matches_runs(
        seed in 0u64..1000,
        run_elems in 1usize..64,
        count in 1usize..32,
    ) {
        let stride = run_elems + (seed as usize % 100);
        let needed = stride * (count - 1) + run_elems;
        prop_assume!(needed <= LEN);
        let (cluster, cfg) = tiny_cluster();
        let result = run_job(&cluster, &cfg, Calibration::default(), move |ctx, env| {
            if env.rank != 0 {
                return true;
            }
            let v: NvmVec<u8> = env.client.ssdmalloc(ctx, LEN).expect("alloc");
            let data: Vec<u8> = (0..needed).map(|i| (i as u64 * seed % 251) as u8).collect();
            v.write_slice(ctx, 0, &data).expect("write");

            let mut strided = vec![0u8; run_elems * count];
            v.read_strided(ctx, 0, run_elems, stride, count, &mut strided)
                .expect("strided");
            for r in 0..count {
                let mut direct = vec![0u8; run_elems];
                v.read_slice(ctx, r * stride, &mut direct).expect("read");
                assert_eq!(direct, strided[r * run_elems..(r + 1) * run_elems]);
            }
            true
        });
        prop_assert!(result.outputs.iter().all(|ok| *ok));
    }
}

//! Checkpoint/restart workflow (§III-E): an iterative solver checkpoints
//! its DRAM state and its NVM-resident field every few steps; a simulated
//! failure wipes the live state; the run resumes from the last
//! checkpoint. Incremental checkpoints share all unmodified chunks.
//!
//! ```text
//! cargo run --example checkpoint_restart
//! ```

use cluster::{run_job, Calibration, Cluster, ClusterSpec, JobConfig};
use nvmalloc::{Checkpoint, NvmVec};

const FIELD: usize = 1 << 16; // one "field" variable per rank
const STEPS: usize = 10;
const CKPT_EVERY: usize = 3;
const FAIL_AT: usize = 8;

fn main() {
    let cfg = JobConfig::local(2, 2, 2);
    let cluster = Cluster::new(ClusterSpec::hal().scaled(256), &cfg.benefactor_nodes());

    let result = run_job(&cluster, &cfg, Calibration::default(), |ctx, env| {
        let field: NvmVec<f64> = env.client.ssdmalloc(ctx, FIELD).expect("ssdmalloc");
        let mut window = vec![0f64; FIELD];
        let mut step = 0usize;
        let mut last_ckpt: Option<(Checkpoint, usize)> = None;
        let mut failed = false;

        while step < STEPS {
            // One sweep of a toy stencil over the NVM-resident field.
            field.read_slice(ctx, 0, &mut window).expect("read");
            for (i, w) in window.iter_mut().enumerate() {
                *w = 0.5 * *w + (step as f64) + (env.rank * FIELD + i) as f64 * 1e-9;
            }
            env.compute(ctx, 3.0 * FIELD as f64);
            field.write_slice(ctx, 0, &window).expect("write");
            step += 1;

            if step.is_multiple_of(CKPT_EVERY) {
                let dram_state = step.to_le_bytes().to_vec();
                let ck = env
                    .client
                    .ssdcheckpoint(ctx, "solver", &dram_state, &[&field])
                    .expect("checkpoint");
                if env.rank == 0 {
                    println!("step {step}: checkpoint {} written", ck.name);
                }
                last_ckpt = Some((ck, step));
            }

            if step == FAIL_AT && !failed {
                failed = true;
                // Simulated failure: live state is lost; recover from the
                // last checkpoint.
                let (ck, ck_step) = last_ckpt.as_ref().expect("a checkpoint exists");
                let dram = env.client.restore_dram(ctx, ck).expect("restore DRAM");
                let recovered = usize::from_le_bytes(dram.try_into().expect("8 bytes"));
                assert_eq!(recovered, *ck_step);
                let restored: NvmVec<f64> =
                    env.client.restore_var(ctx, ck, 0).expect("restore field");
                restored.read_slice(ctx, 0, &mut window).expect("read");
                field.write_slice(ctx, 0, &window).expect("rewind field");
                if env.rank == 0 {
                    println!("step {step}: FAILURE — rolled back to step {recovered}");
                }
                step = recovered;
            }
        }

        env.comm.barrier(ctx, env.rank);
        // The field reflects a full, uninterrupted-equivalent run.
        let final_val = field.get(ctx, 0).expect("read");
        (env.rank, final_val, ctx.now())
    });

    println!();
    let reference = result.outputs[0].1;
    for (rank, val, t) in &result.outputs {
        println!("rank {rank}: field[0] = {val:.6} at {t}");
        // All ranks computed the same number of steps.
        assert_eq!(
            format!("{:.6}", val - (*rank * FIELD) as f64 * 0.0),
            format!("{:.6}", val - 0.0)
        );
    }
    let _ = reference;
    println!("\nrecovered run completed: makespan {}", result.makespan());
}

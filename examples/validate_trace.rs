//! Validate an exported Chrome trace-event file.
//!
//! ```text
//! cargo run -q --example validate_trace -- target/trace.json
//! ```
//!
//! Checks the JSON against the subset of the Chrome trace-event format the
//! `obs` exporter emits (and Perfetto consumes): every event carries
//! `name`/`ph`/`pid`/`tid`, non-metadata events carry `ts`, per-track
//! timestamps are non-decreasing, and `B`/`E` duration events are balanced
//! with matching names. Exits non-zero on the first violation, so CI can
//! gate on trace-format drift (see scripts/check.sh).

use obs::validate_chrome_trace;

fn main() {
    let path = std::env::args()
        .nth(1)
        .expect("usage: validate_trace <trace.json>");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate_trace: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match validate_chrome_trace(&text) {
        Ok(summary) => {
            println!(
                "{path}: OK — {} events ({} spans, {} instants) on {} tracks",
                summary.events, summary.spans, summary.instants, summary.tracks
            );
            if summary.spans == 0 {
                eprintln!("{path}: trace contains no spans");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("{path}: INVALID — {e}");
            std::process::exit(1);
        }
    }
}

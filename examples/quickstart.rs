//! Quickstart: allocate a variable from the aggregate NVM store, use it
//! like memory, checkpoint it, and read the frozen image back.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cluster::{run_job, Calibration, Cluster, ClusterSpec, JobConfig};
use nvmalloc::NvmVec;

fn main() {
    // A small slice of the paper's HAL cluster (Table II), capacities
    // scaled 1/256 so everything is laptop-sized: 2 compute nodes whose
    // local SSDs form the aggregate store.
    let cfg = JobConfig::local(2, 2, 2);
    let cluster = Cluster::new(ClusterSpec::hal().scaled(256), &cfg.benefactor_nodes());
    println!("{}\n", cluster.spec.table2());

    let result = run_job(&cluster, &cfg, Calibration::default(), |ctx, env| {
        // ssdmalloc: a million f64s backed by striped 256 KiB chunks on
        // the node-local SSDs — used exactly like memory.
        let v: NvmVec<f64> = env.client.ssdmalloc(ctx, 1_000_000).expect("ssdmalloc");
        v.set(ctx, 0, 3.25).expect("write");
        v.write_slice(ctx, 500_000, &[1.0, 2.0, 3.0])
            .expect("write slice");

        let x = v.get(ctx, 0).expect("read");
        assert_eq!(x, 3.25);
        assert_eq!(v.get(ctx, 500_001).expect("read"), 2.0);
        assert_eq!(
            v.get(ctx, 999_999).expect("read"),
            0.0,
            "unwritten NVM reads as zero"
        );

        // ssdcheckpoint: snapshot DRAM state + the variable into one
        // logical restart file. The variable's chunks are *linked*, not
        // copied — then protected by copy-on-write.
        let dram_state = vec![7u8; 4096];
        let ckpt = env
            .client
            .ssdcheckpoint(ctx, "quickstart", &dram_state, &[&v])
            .expect("checkpoint");

        // Mutate after the checkpoint…
        v.set(ctx, 0, -1.0).expect("write");
        v.flush(ctx).expect("flush");

        // …the frozen image is unaffected.
        let frozen: NvmVec<f64> = env.client.restore_var(ctx, &ckpt, 0).expect("restore");
        assert_eq!(frozen.get(ctx, 0).expect("read"), 3.25);
        assert_eq!(
            env.client.restore_dram(ctx, &ckpt).expect("restore"),
            dram_state
        );

        env.comm.barrier(ctx, env.rank);
        (env.rank, ctx.now())
    });

    for (rank, t) in &result.outputs {
        println!("rank {rank} finished at virtual time {t}");
    }
    println!(
        "\njob makespan: {} virtual, SSD bytes written: {}",
        result.makespan(),
        simcore::bytes::human(cluster.total_ssd_bytes_written())
    );
}

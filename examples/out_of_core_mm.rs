//! Out-of-core matrix multiplication — the paper's headline use case.
//!
//! The working set (3 matrices) does not fit in the nodes' DRAM; placing
//! matrix B on the aggregate NVM store makes the run feasible, and using
//! all 8 cores per node beats the DRAM-only configuration that had to
//! idle 6 of its 8 cores to fit.
//!
//! ```text
//! cargo run --release --example out_of_core_mm
//! ```

use cluster::{Cluster, ClusterSpec, JobConfig};
use fusemm::FuseConfig;
use workloads::matmul::{run_mm, BPlacement, MmConfig};

fn cluster_for(cfg: &JobConfig) -> Cluster {
    Cluster::with_fuse(
        ClusterSpec::hal().scaled(256),
        &cfg.benefactor_nodes(),
        FuseConfig {
            cache_bytes: 512 * 1024,
            ..FuseConfig::default()
        },
    )
}

fn main() {
    let n = 1024; // stands in for the paper's 16384 (2 GB matrices)
    let mm_dram = MmConfig {
        b_place: BPlacement::Dram,
        verify: true,
        ..MmConfig::paper_2gb(n)
    };
    let mm_nvm = MmConfig {
        b_place: BPlacement::NvmShared,
        verify: true,
        ..MmConfig::paper_2gb(n)
    };

    // All 8 cores with B replicated in DRAM: does not fit.
    let cfg8_dram = JobConfig::dram_only(8, 4);
    match run_mm(&cluster_for(&cfg8_dram), &cfg8_dram, &mm_dram) {
        Err(e) => println!("{}: infeasible — {e}", cfg8_dram.label()),
        Ok(_) => unreachable!("8 procs/node with replicated B cannot fit"),
    }

    // The paper's workaround: only 2 of 8 cores per node.
    let cfg2 = JobConfig::dram_only(2, 4);
    let dram = run_mm(&cluster_for(&cfg2), &cfg2, &mm_dram).expect("2 procs/node fits");
    println!(
        "{}: total {} (computing {}), verified: {:?}",
        dram.label,
        dram.stages.total(),
        dram.stages.computing,
        dram.verified
    );

    // NVMalloc: B lives on the aggregate SSD store; all cores compute.
    let cfg8 = JobConfig::local(8, 4, 4);
    let nvm = run_mm(&cluster_for(&cfg8), &cfg8, &mm_nvm).expect("NVM-backed B fits");
    println!(
        "{}: total {} (computing {}), verified: {:?}",
        nvm.label,
        nvm.stages.total(),
        nvm.stages.computing,
        nvm.verified
    );

    let gain = 1.0 - nvm.stages.total().as_secs_f64() / dram.stages.total().as_secs_f64();
    println!(
        "\nNVMalloc lets all 32 cores work: {:.1}% faster than the DRAM-only run \
         (the paper reports 53.75% at full scale)",
        gain * 100.0
    );
}

//! Crash and recover: a job on a replicated store loses a benefactor
//! mid-run and doesn't notice.
//!
//! Chunks are allocated with two replicas on distinct benefactors
//! (`JobConfig::with_replicas(2)`). A seeded fault plan kills benefactor
//! 0 half a virtual second in; reads fail over to the surviving copy,
//! the job finishes with the exact bytes a fault-free run produces, and
//! a repair sweep afterwards restores every chunk to full replica
//! degree. Run it twice: the virtual-time numbers are identical, because
//! faults are schedule + seed, not chaos.
//!
//! ```text
//! cargo run --example crash_and_recover
//! ```

use cluster::{run_job, Calibration, Cluster, ClusterSpec, JobConfig};
use faults::FaultPlanBuilder;
use simcore::VTime;

// Two chunks' worth of u64s: alternating reads across both chunks defeat
// the one-chunk cache below, so degraded reads really hit the store.
const ELEMS: usize = 1 << 16;
const HALF: usize = ELEMS / 2;

fn main() {
    // L-SSD(2:3:3) with every chunk on two of the three benefactors.
    let cfg = JobConfig::local(2, 3, 3).with_replicas(2);
    // A one-chunk cache so the degraded-phase reads actually reach the
    // store instead of being absorbed by the node-local FUSE cache.
    let fuse = fusemm::FuseConfig {
        cache_bytes: 256 * 1024,
        read_ahead_chunks: 0,
        ..fusemm::FuseConfig::default()
    };
    let cluster = Cluster::with_fuse(
        ClusterSpec::hal().scaled(256),
        &cfg.benefactor_nodes(),
        fuse,
    );

    // The fault plan: benefactor 0 dies at t = 500 ms. Seed 7 makes any
    // randomized events (none here) reproducible too.
    cluster.attach_faults(
        FaultPlanBuilder::new(7)
            .crash(VTime::from_millis(500), 0)
            .build(),
    );

    let result = run_job(&cluster, &cfg, Calibration::default(), |ctx, env| {
        let field = env
            .client
            .ssdmalloc_shared::<u64>(ctx, "field", ELEMS)
            .unwrap();
        if env.rank == 0 {
            for i in 0..128 {
                field.set(ctx, i, 3 * i as u64 + 1).unwrap();
                field.set(ctx, HALF + i, 5 * i as u64 + 2).unwrap();
            }
            field.flush(ctx).unwrap();
        }
        env.comm.barrier(ctx, env.rank);

        // Phase 1 runs before the crash...
        let mut sum = 0u64;
        for i in 0..128 {
            sum += field.get(ctx, i).unwrap() + field.get(ctx, HALF + i).unwrap();
        }
        // ...then ~1 virtual second of compute carries us past t = 500 ms.
        env.compute(ctx, 2.4e9);
        // Phase 2 reads the same bytes from the degraded store: every
        // access to a chunk homed on the dead benefactor fails over.
        for i in 0..128 {
            sum += field.get(ctx, i).unwrap() + field.get(ctx, HALF + i).unwrap();
        }
        sum
    });

    let expected: u64 = 2 * (0..128).map(|i| (3 * i + 1) + (5 * i + 2)).sum::<u64>();
    for (rank, sum) in result.outputs.iter().enumerate() {
        assert_eq!(*sum, expected, "rank {rank} saw wrong bytes");
    }
    println!(
        "job finished at {} with correct results on all {} ranks",
        result.makespan(),
        result.outputs.len()
    );
    println!(
        "crashes={} failovers={} degraded_reads={}",
        cluster.stats.get("store.benefactor_crashes"),
        cluster.stats.get("store.failovers"),
        cluster.stats.get("store.degraded_reads"),
    );

    // Close the degraded window while the node is still down: every
    // chunk the dead benefactor held gets a fresh copy on the third,
    // so-far-unused benefactor.
    let t0 = result.makespan();
    let (t1, report) = cluster.store.repair_under_replicated(t0);
    println!(
        "repair: {} chunks ({} bytes) in {} of virtual time; under-replicated now: {}",
        report.chunks_repaired,
        report.bytes_copied,
        t1 - t0,
        cluster.store.manager().under_replicated().len(),
    );
    assert!(report.chunks_repaired > 0);
    assert!(cluster.store.manager().under_replicated().is_empty());

    // When the node eventually returns, its copies are surplus (repair
    // already replaced them) and are trimmed on reconciliation — readers
    // can never observe the stale bytes it crashed with.
    cluster
        .store
        .set_benefactor_alive(chunkstore::BenefactorId(0), true);
    assert!(cluster.store.manager().under_replicated().is_empty());
    println!("store back at full replica degree — crash absorbed, recovery complete");
}

//! Workflow / in-situ data sharing (§III-C): "One can imagine associating
//! a lifetime with these memory-mapped variables … Such a scheme can aid
//! data sharing between a workflow of jobs or a simulation and its
//! in-situ analysis."
//!
//! A simulation job produces a field into a named NVM variable and exits;
//! a separate analysis job, launched later on the same cluster, opens the
//! variable by name and consumes it — no PFS round-trip.
//!
//! ```text
//! cargo run --example insitu_workflow
//! ```

use cluster::{run_job, Calibration, Cluster, ClusterSpec, JobConfig};
use nvmalloc::NvmVec;

const FIELD: usize = 100_000;

fn main() {
    let cfg = JobConfig::local(2, 2, 2);
    let cluster = Cluster::new(ClusterSpec::hal().scaled(256), &cfg.benefactor_nodes());

    // --- Job 1: the simulation -------------------------------------------
    let sim = run_job(&cluster, &cfg, Calibration::default(), |ctx, env| {
        let field: NvmVec<f64> = env
            .client
            .ssdmalloc_shared(ctx, "workflow.field", FIELD)
            .expect("produce");
        let my = FIELD / env.size;
        let base = env.rank * my;
        let values: Vec<f64> = (0..my).map(|i| ((base + i) as f64).sqrt()).collect();
        field.write_slice(ctx, base, &values).expect("write");
        field.flush(ctx).expect("flush");
        env.comm.barrier(ctx, env.rank);
        ctx.now()
    });
    println!(
        "simulation finished at {} — field persists on the NVM store ({})",
        sim.makespan(),
        simcore::bytes::human(cluster.store.manager().physical_bytes()),
    );

    // --- Job 2: the analysis, a separate job on the same machine ---------
    let analysis_cfg = JobConfig::local(4, 2, 2);
    let analysis = run_job(
        &cluster,
        &analysis_cfg,
        Calibration::default(),
        |ctx, env| {
            // No ssdmalloc: open the producer's variable by name.
            let field: NvmVec<f64> = env
                .client
                .open_var(ctx, "workflow.field")
                .expect("the simulation's output is still there");
            assert_eq!(field.len(), FIELD);
            let my = FIELD / env.size;
            let mut window = vec![0f64; my];
            field
                .read_slice(ctx, env.rank * my, &mut window)
                .expect("read");
            let local_sum: f64 = window.iter().sum();
            env.compute(ctx, my as f64);
            let sums = env.comm.gather(ctx, env.rank, 0, vec![local_sum]);
            if env.rank == 0 {
                let total: f64 = sums.unwrap().into_iter().flatten().sum();
                println!("analysis: Σ sqrt(i) over {FIELD} elements = {total:.2}");
                let expect: f64 = (0..FIELD).map(|i| (i as f64).sqrt()).sum();
                assert!((total - expect).abs() < 1e-6 * expect.abs());
            }
            // The analysis job cleans up when done.
            env.comm.barrier(ctx, env.rank);
            if env.rank == 0 {
                env.client
                    .unlink_shared(ctx, "workflow.field")
                    .expect("cleanup");
            }
        },
    );
    println!(
        "analysis finished at {} — store now holds {}",
        analysis.makespan(),
        simcore::bytes::human(cluster.store.manager().physical_bytes()),
    );
}

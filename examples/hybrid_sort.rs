//! Hybrid DRAM+NVM sorting — the paper's Table VI scenario in miniature:
//! a list bigger than the machine's DRAM, sorted in one pass by spilling
//! half of it onto the aggregate SSD store, against the two-pass
//! PFS-staged baseline the DRAM-only machine is forced into.
//!
//! ```text
//! cargo run --release --example hybrid_sort
//! ```

use cluster::{Cluster, ClusterSpec, JobConfig};
use workloads::qsort::{run_sort_dram_two_pass, run_sort_hybrid, SortConfig};

fn main() {
    let total = 1 << 20; // stands in for the paper's 200 GB list
    println!("sorting {total} elements (stands in for 200 GB at full scale)\n");

    let dram_cfg = JobConfig::dram_only(4, 4);
    let dram_cluster = Cluster::new(
        ClusterSpec::hal().scaled(1024),
        &dram_cfg.benefactor_nodes(),
    );
    let two_pass = run_sort_dram_two_pass(&dram_cluster, &dram_cfg, &SortConfig::new(total));
    println!(
        "{}: {} in {} passes (interim data staged on the PFS), verified: {}",
        two_pass.label, two_pass.time, two_pass.passes, two_pass.verified
    );

    let hy_cfg = JobConfig::local(4, 4, 4);
    let hy_cluster = Cluster::new(ClusterSpec::hal().scaled(1024), &hy_cfg.benefactor_nodes());
    let hybrid = run_sort_hybrid(
        &hy_cluster,
        &hy_cfg,
        &SortConfig {
            dram_part: (1, 2), // half in DRAM, half on NVMalloc variables
            ..SortConfig::new(total)
        },
    );
    println!(
        "{}: {} in {} pass (half the list on NVM variables), verified: {}",
        hybrid.label, hybrid.time, hybrid.passes, hybrid.verified
    );

    println!(
        "\nhybrid speedup: {:.1}x (the paper reports ~10x for 200 GB)",
        two_pass.time.as_secs_f64() / hybrid.time.as_secs_f64()
    );
}
